// Package workload synthesises the instruction and memory-reference
// streams of the 21 benchmarks the CIAO paper evaluates (Table II:
// PolyBench, Mars and Rodinia kernels). The real benchmarks cannot be
// executed without a CUDA toolchain and GPGPU-Sim, so each benchmark
// is replaced by a deterministic generator parameterised by its
// published characteristics — APKI (accesses per kilo-instruction),
// input size, best static warp count, shared-memory usage, barrier
// behaviour and working-set class — plus an access-pattern model that
// recreates the locality/interference structure the paper describes:
// warps re-reference private windows (potential of data locality),
// groups of warps share regions (the non-uniform inter-warp
// interference of Figures 1a and 4), and a fraction of accesses are
// irregular (index-array style, §VI).
package workload

import (
	"fmt"

	"repro/internal/memory"
)

// Class is the paper's benchmark taxonomy (§V-A).
type Class uint8

// Benchmark classes.
const (
	// LWS is large-working-set: thrashes L1D and the shared-memory
	// cache; throttling (CIAO-T) is the effective remedy.
	LWS Class = iota
	// SWS is small-working-set: fits once interfering warps are
	// isolated into shared memory; CIAO-P is the effective remedy.
	SWS
	// CI is compute-intensive: low APKI, throttling only hurts.
	CI
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case LWS:
		return "LWS"
	case SWS:
		return "SWS"
	case CI:
		return "CI"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// InstrKind classifies generated instructions.
type InstrKind uint8

// Instruction kinds.
const (
	// Compute occupies the ALU for one issue slot.
	Compute InstrKind = iota
	// GlobalLoad reads global memory through L1D (or the CIAO path).
	GlobalLoad
	// GlobalStore writes global memory (write-through, non-blocking).
	GlobalStore
	// SharedOp is an explicit programmer-managed shared-memory access.
	SharedOp
	// BarrierOp synchronises the warp's CTA.
	BarrierOp
)

// String implements fmt.Stringer.
func (k InstrKind) String() string {
	switch k {
	case Compute:
		return "compute"
	case GlobalLoad:
		return "load"
	case GlobalStore:
		return "store"
	case SharedOp:
		return "shared"
	case BarrierOp:
		return "barrier"
	default:
		return fmt.Sprintf("InstrKind(%d)", uint8(k))
	}
}

// MaxFanout bounds how many line requests one warp memory instruction
// may coalesce into. A fully uncoalesced warp touches 32 lines; the
// synthetic model caps bursts at 8, which preserves the bandwidth and
// MSHR-pressure behaviour without per-thread simulation.
const MaxFanout = 8

// IntensityScale converts Table II's APKI (accesses per kilo
// *thread* instructions) into line accesses per simulated *warp*
// instruction: one warp instruction covers 32 thread instructions.
const IntensityScale = 32

// Instruction is one generated warp instruction. Memory instructions
// carry up to MaxFanout coalesced line addresses; the warp blocks
// until every line's fill returns.
type Instruction struct {
	Kind InstrKind
	// Addrs holds the NAddr line addresses of a memory instruction.
	Addrs [MaxFanout]memory.Addr
	// NAddr is the live prefix length of Addrs.
	NAddr uint8
	// Conflict is the bank-conflict degree for SharedOp.
	Conflict int
}

// AddrSlice returns the live addresses.
func (i *Instruction) AddrSlice() []memory.Addr { return i.Addrs[:i.NAddr] }

// Phase describes one execution phase of a kernel. ATAX, for example,
// runs a memory-intensive phase followed by a compute-intensive one
// (§V-C); most benchmarks have a single phase.
type Phase struct {
	// Frac is the fraction of the warp's instructions spent in this
	// phase; fractions should sum to 1.
	Frac float64
	// APKI is the phase's memory intensity (global accesses per 1000
	// thread instructions, as published in Table II).
	APKI int
	// Fanout is how many line requests one memory instruction issues
	// (1..MaxFanout): the coalescing quality. Together with APKI it
	// fixes the memory-instruction probability:
	// P(mem) = APKI×IntensityScale/1000/Fanout.
	Fanout int
	// WindowLines is the per-warp re-reference window, in cache lines:
	// the "potential of data locality" knob. The window is walked
	// cyclically, so each line's re-reference distance is
	// WindowLines / (WindowPct × line rate) instructions — long enough
	// to span scheduling turns, which is what makes window survival
	// (and therefore hit rate) depend on the fill pressure of the
	// *other* warps: cache interference.
	WindowLines int
	// Reuse controls window drift: the window slides one line every
	// WindowLines×Reuse window touches. Higher reuse = stronger
	// locality potential (fewer cold misses).
	Reuse int
	// WindowPct is the percentage of addresses that re-reference the
	// window; the rest stream sequentially (one-touch matrix sweeps)
	// except for IrregularPct.
	WindowPct int
	// IrregularPct is the percentage of addresses falling uniformly in
	// the whole input (index-array irregularity).
	IrregularPct int
	// DivergentPct is the percentage of memory instructions that are
	// fully diverged: they fan out to MaxFanout lines regardless of
	// Fanout, modelling branch/memory divergence bursts. 0 (the
	// default, and all Table II kernels) keeps the stream identical to
	// the pre-knob generator.
	DivergentPct int
	// HeavyScale multiplies heavy warps' windows (default per class).
	// It calibrates whether the heavy working set fits the
	// shared-memory cache once isolated (SWS) or overwhelms it (LWS).
	HeavyScale int
}

// Spec fully describes one synthetic benchmark.
type Spec struct {
	// Name is the paper's benchmark name.
	Name string
	// Class is the working-set class of Table II.
	Class Class
	// APKI is the published accesses-per-kilo-instruction.
	APKI int
	// InputBytes is the published input size.
	InputBytes int
	// NwrpBest is the Best-SWL active-warp count of Table II.
	NwrpBest int
	// FsMem is the fraction of shared memory the kernel itself uses.
	FsMem float64
	// Barriers reports whether the kernel synchronises CTAs.
	Barriers bool
	// NumWarps is the warps resident per SM (Table I: up to 48).
	NumWarps int
	// WarpsPerCTA groups warps into CTAs for barriers and SMMT usage.
	WarpsPerCTA int
	// InstrPerWarp is the instruction budget per warp.
	InstrPerWarp uint64
	// Fanout is the default coalescing fan-out for single-phase specs.
	Fanout int
	// HeavyEvery makes every k-th warp "heavy": an 8× reuse window,
	// doubled reuse count, 1.2× memory intensity and a quarter of the
	// irregularity. Heavy warps are the paper's central characters —
	// warps with *high potential of data locality* whose large
	// re-reference footprints severely interfere with everyone
	// (Figure 1a: W16/W18/W23; Figure 4a: one warp dominating the
	// interference suffered by another). CCWS protects them (high
	// lost-locality scores); CIAO throttles or isolates them.
	// 0 disables heterogeneity.
	HeavyEvery int
	// RegionSharing is how many warps share one access region: 1 means
	// fully private streams; k>1 makes groups of k warps re-reference
	// the same window with phase offsets, creating the strong pairwise
	// interference of Figure 1a.
	RegionSharing int
	// SharedPct is the percentage of instructions that are explicit
	// shared-memory operations.
	SharedPct int
	// ConflictDegree is the bank-conflict degree of those operations.
	ConflictDegree int
	// StorePct is the percentage of global accesses that are stores.
	StorePct int
	// BarrierEvery inserts a barrier each N instructions when Barriers.
	BarrierEvery uint64
	// Phases describes phase behaviour; when nil a single phase is
	// derived from APKI and the class defaults.
	Phases []Phase
	// Seed makes the stream deterministic; combined with warp ID.
	Seed uint64
}

// Validate reports specification errors.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if s.NumWarps <= 0 || s.InstrPerWarp == 0 {
		return fmt.Errorf("workload %s: no work (%d warps, %d instr)", s.Name, s.NumWarps, s.InstrPerWarp)
	}
	if s.WarpsPerCTA <= 0 || s.NumWarps%s.WarpsPerCTA != 0 {
		return fmt.Errorf("workload %s: %d warps not divisible into CTAs of %d", s.Name, s.NumWarps, s.WarpsPerCTA)
	}
	if s.RegionSharing <= 0 {
		return fmt.Errorf("workload %s: non-positive region sharing", s.Name)
	}
	if s.InputBytes < memory.LineSize {
		return fmt.Errorf("workload %s: input %dB below one line", s.Name, s.InputBytes)
	}
	var frac float64
	for _, p := range s.Phases {
		frac += p.Frac
	}
	if len(s.Phases) > 0 && (frac < 0.999 || frac > 1.001) {
		return fmt.Errorf("workload %s: phase fractions sum to %f", s.Name, frac)
	}
	return nil
}

// NumCTAs returns the CTA count.
func (s Spec) NumCTAs() int { return s.NumWarps / s.WarpsPerCTA }

// effectivePhases returns the phase list, deriving a single phase from
// the top-level parameters when none is given, and normalising fanout.
func (s Spec) effectivePhases() []Phase {
	phases := s.Phases
	if len(phases) == 0 {
		p := classPhase(s.Class)
		p.Frac = 1
		p.APKI = s.APKI
		if s.Fanout > 0 {
			p.Fanout = s.Fanout
		}
		phases = []Phase{p}
	}
	out := make([]Phase, len(phases))
	copy(out, phases)
	for i := range out {
		if out[i].Fanout <= 0 {
			if s.Fanout > 0 {
				out[i].Fanout = s.Fanout
			} else {
				out[i].Fanout = 1
			}
		}
		if out[i].Fanout > MaxFanout {
			out[i].Fanout = MaxFanout
		}
		if out[i].HeavyScale <= 0 {
			out[i].HeavyScale = classPhase(s.Class).HeavyScale
		}
		if out[i].WindowPct <= 0 {
			out[i].WindowPct = classPhase(s.Class).WindowPct
		}
	}
	return out
}

// MemProbPerMille returns the probability (in 1/1000) that one warp
// instruction of the phase is a memory instruction, derived from the
// thread-level APKI and the coalescing fan-out. It saturates at 950 to
// leave room for control instructions.
func (p Phase) MemProbPerMille() int {
	fan := p.Fanout
	if fan <= 0 {
		fan = 1
	}
	prob := p.APKI * IntensityScale / fan
	if prob > 950 {
		prob = 950
	}
	return prob
}

// classPhase returns the light-warp phase template per class. The
// window sizes are calibrated against the 128-line L1D and the
// ~372-block shared-memory cache: LWS heavy windows overflow even the
// shared-memory cache (only throttling helps); SWS heavy windows fit
// it once isolated (redirection suffices); CI kernels reuse heavily
// but access rarely.
func classPhase(c Class) Phase {
	switch c {
	case LWS:
		return Phase{WindowLines: 16, Reuse: 4, WindowPct: 50, IrregularPct: 20, Fanout: 4, HeavyScale: 8}
	case SWS:
		return Phase{WindowLines: 12, Reuse: 6, WindowPct: 70, IrregularPct: 5, Fanout: 2, HeavyScale: 4}
	default: // CI
		return Phase{WindowLines: 8, Reuse: 8, WindowPct: 60, IrregularPct: 3, Fanout: 2, HeavyScale: 8}
	}
}

// HeavyReuseScale multiplies a heavy warp's reuse count (more
// locality). See Spec.HeavyEvery.
const HeavyReuseScale = 2
