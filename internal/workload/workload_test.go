package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/memory"
)

func testSpec() Spec {
	return Spec{
		Name:          "test",
		Class:         SWS,
		APKI:          100,
		InputBytes:    1 << 20,
		NwrpBest:      4,
		NumWarps:      8,
		WarpsPerCTA:   4,
		InstrPerWarp:  4000,
		RegionSharing: 2,
		StorePct:      20,
		Seed:          42,
	}
}

func TestSpecValidate(t *testing.T) {
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := testSpec()
	bad.Name = ""
	if bad.Validate() == nil {
		t.Error("empty name accepted")
	}
	bad = testSpec()
	bad.WarpsPerCTA = 3 // 8 % 3 != 0
	if bad.Validate() == nil {
		t.Error("indivisible CTA grouping accepted")
	}
	bad = testSpec()
	bad.RegionSharing = 0
	if bad.Validate() == nil {
		t.Error("zero region sharing accepted")
	}
	bad = testSpec()
	bad.Phases = []Phase{{Frac: 0.5}}
	if bad.Validate() == nil {
		t.Error("non-unit phase fractions accepted")
	}
	bad = testSpec()
	bad.InputBytes = 4
	if bad.Validate() == nil {
		t.Error("sub-line input accepted")
	}
}

func TestStreamDeterminism(t *testing.T) {
	s1 := NewWarpStream(testSpec(), 3)
	s2 := NewWarpStream(testSpec(), 3)
	for i := 0; i < 2000; i++ {
		i1, ok1 := s1.Next()
		i2, ok2 := s2.Next()
		if ok1 != ok2 || i1 != i2 {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, i1, i2)
		}
	}
}

func TestStreamsDifferAcrossWarps(t *testing.T) {
	a := NewWarpStream(testSpec(), 0)
	b := NewWarpStream(testSpec(), 5)
	same := true
	for i := 0; i < 500; i++ {
		ia, _ := a.Next()
		ib, _ := b.Next()
		if ia != ib {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct warps generated identical streams")
	}
}

func TestStreamExhaustion(t *testing.T) {
	spec := testSpec()
	spec.InstrPerWarp = 100
	s := NewWarpStream(spec, 0)
	n := 0
	for {
		_, ok := s.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 100 {
		t.Fatalf("stream yielded %d instructions, want 100", n)
	}
	if !s.Done() || s.Remaining() != 0 {
		t.Fatal("exhausted stream not Done")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("Next after exhaustion succeeded")
	}
}

func TestMeasuredAPKIMatchesSpec(t *testing.T) {
	// Line accesses per warp instruction should approximate
	// APKI × IntensityScale / 1000 regardless of the fan-out split.
	spec := testSpec()
	spec.APKI = 100
	spec.Fanout = 4
	spec.InstrPerWarp = 20000
	s := NewWarpStream(spec, 1)
	lines, total := 0, 0
	for {
		ins, ok := s.Next()
		if !ok {
			break
		}
		total++
		if ins.Kind == GlobalLoad || ins.Kind == GlobalStore {
			lines += int(ins.NAddr)
		}
	}
	perKiloThread := float64(lines) / float64(total) * 1000 / IntensityScale
	if perKiloThread < 80 || perKiloThread > 120 {
		t.Fatalf("measured APKI = %.1f, spec 100 (±20%%)", perKiloThread)
	}
}

func TestMemProbPerMille(t *testing.T) {
	p := Phase{APKI: 100, Fanout: 4}
	if got := p.MemProbPerMille(); got != 800 {
		t.Fatalf("MemProb = %d, want 100*32/4 = 800", got)
	}
	p = Phase{APKI: 140, Fanout: 2}
	if got := p.MemProbPerMille(); got != 950 {
		t.Fatalf("MemProb should saturate at 950, got %d", got)
	}
	p = Phase{APKI: 10} // zero fanout treated as 1
	if got := p.MemProbPerMille(); got != 320 {
		t.Fatalf("MemProb = %d, want 320", got)
	}
}

func TestStorePct(t *testing.T) {
	spec := testSpec()
	spec.StorePct = 50
	spec.InstrPerWarp = 30000
	s := NewWarpStream(spec, 0)
	loads, stores := 0, 0
	for {
		ins, ok := s.Next()
		if !ok {
			break
		}
		switch ins.Kind {
		case GlobalLoad:
			loads++
		case GlobalStore:
			stores++
		}
	}
	ratio := float64(stores) / float64(loads+stores)
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("store ratio = %.2f, want ~0.5", ratio)
	}
}

func TestAddressesWithinInput(t *testing.T) {
	spec := testSpec()
	s := NewWarpStream(spec, 2)
	limit := GlobalBase + memory.Addr(spec.InputBytes)
	for {
		ins, ok := s.Next()
		if !ok {
			break
		}
		switch ins.Kind {
		case GlobalLoad:
			if ins.NAddr == 0 {
				t.Fatal("memory instruction with no addresses")
			}
			for _, a := range ins.AddrSlice() {
				if a < GlobalBase || a >= limit {
					t.Fatalf("address %s outside input [%s,%s)", a, GlobalBase, limit)
				}
				if a.Offset() != 0 {
					t.Fatalf("address %s not line-aligned", a)
				}
			}
		case GlobalStore:
			// Stores stream to the private output space.
			for _, a := range ins.AddrSlice() {
				if a < OutputBase {
					t.Fatalf("store address %s below output base", a)
				}
			}
		}
	}
}

func TestRegionSharingOverlap(t *testing.T) {
	spec := testSpec()
	spec.RegionSharing = 2 // warps {0,1} share, {2,3} share, ...
	lines := func(w int) map[memory.Addr]bool {
		s := NewWarpStream(spec, w)
		out := map[memory.Addr]bool{}
		for {
			ins, ok := s.Next()
			if !ok {
				break
			}
			if ins.Kind == GlobalLoad {
				for _, a := range ins.AddrSlice() {
					out[a.LineAddr()] = true
				}
			}
		}
		return out
	}
	overlap := func(a, b map[memory.Addr]bool) int {
		n := 0
		for l := range a {
			if b[l] {
				n++
			}
		}
		return n
	}
	l0, l1, l2 := lines(0), lines(1), lines(2)
	sameGroup := overlap(l0, l1)
	crossGroup := overlap(l0, l2)
	if sameGroup <= crossGroup {
		t.Fatalf("same-group overlap %d not above cross-group %d", sameGroup, crossGroup)
	}
}

func TestBarrierAlignmentAcrossWarps(t *testing.T) {
	spec := testSpec()
	spec.Barriers = true
	spec.BarrierEvery = 500
	idx := func(w int) []uint64 {
		s := NewWarpStream(spec, w)
		var out []uint64
		for i := uint64(0); ; i++ {
			ins, ok := s.Next()
			if !ok {
				break
			}
			if ins.Kind == BarrierOp {
				out = append(out, i)
			}
		}
		return out
	}
	a, b := idx(0), idx(3)
	if len(a) == 0 {
		t.Fatal("no barriers generated")
	}
	if len(a) != len(b) {
		t.Fatalf("warps disagree on barrier count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("barrier %d at different indices: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestPhaseTransition(t *testing.T) {
	spec := testSpec()
	spec.InstrPerWarp = 10000
	spec.Phases = []Phase{
		{Frac: 0.5, APKI: 400, WindowLines: 16, Reuse: 2, IrregularPct: 10, Fanout: 1},
		{Frac: 0.5, APKI: 1, WindowLines: 4, Reuse: 8, IrregularPct: 0, Fanout: 1},
	}
	s := NewWarpStream(spec, 0)
	memFirst, memSecond := 0, 0
	for i := 0; i < 10000; i++ {
		ins, ok := s.Next()
		if !ok {
			break
		}
		if ins.Kind == GlobalLoad || ins.Kind == GlobalStore {
			if i < 5000 {
				memFirst++
			} else {
				memSecond++
			}
		}
	}
	if memFirst < memSecond*10 {
		t.Fatalf("phase contrast missing: %d vs %d memory accesses", memFirst, memSecond)
	}
}

func TestSharedOps(t *testing.T) {
	spec := testSpec()
	spec.SharedPct = 30
	spec.ConflictDegree = 4
	s := NewWarpStream(spec, 0)
	shared := 0
	for {
		ins, ok := s.Next()
		if !ok {
			break
		}
		if ins.Kind == SharedOp {
			shared++
			if ins.Conflict != 4 {
				t.Fatalf("conflict degree = %d, want 4", ins.Conflict)
			}
		}
	}
	frac := float64(shared) / float64(spec.InstrPerWarp)
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("shared fraction = %.2f, want ~0.3", frac)
	}
}

func TestSuiteComplete(t *testing.T) {
	suite := Suite()
	if len(suite) != 21 {
		t.Fatalf("suite has %d benchmarks, want 21 (Table II)", len(suite))
	}
	classes := map[Class]int{}
	for _, s := range suite {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: invalid spec: %v", s.Name, err)
		}
		classes[s.Class]++
	}
	// Table II: 5 LWS, 8 SWS, 8 CI.
	if classes[LWS] != 5 || classes[SWS] != 8 || classes[CI] != 8 {
		t.Fatalf("class counts = %v, want LWS:5 SWS:8 CI:8", classes)
	}
}

func TestTableIICharacteristics(t *testing.T) {
	cases := []struct {
		name  string
		apki  int
		nwrp  int
		fsmem float64
		class Class
	}{
		{"ATAX", 64, 2, 0, LWS},
		{"GESUMMV", 136, 2, 0, SWS},
		{"SS", 34, 48, 0.50, SWS},
		{"Backprop", 3, 36, 0.13, CI},
		{"Hotspot", 1, 48, 0.19, CI},
		{"Lud", 2, 38, 0.50, CI},
	}
	for _, c := range cases {
		s, err := ByName(c.name)
		if err != nil {
			t.Fatalf("%s missing: %v", c.name, err)
		}
		if s.APKI != c.apki || s.NwrpBest != c.nwrp || s.FsMem != c.fsmem || s.Class != c.class {
			t.Errorf("%s = (APKI %d, Nwrp %d, Fsmem %.2f, %v), want (%d,%d,%.2f,%v)",
				c.name, s.APKI, s.NwrpBest, s.FsMem, s.Class, c.apki, c.nwrp, c.fsmem, c.class)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestSensitivitySet(t *testing.T) {
	set := SensitivitySet()
	if len(set) != 7 {
		t.Fatalf("sensitivity set has %d entries, want 7", len(set))
	}
}

func TestMemoryIntensiveExcludesCI(t *testing.T) {
	for _, s := range MemoryIntensive() {
		if s.Class == CI {
			t.Fatalf("%s is CI but in memory-intensive set", s.Name)
		}
	}
	if len(MemoryIntensive()) != 13 {
		t.Fatalf("memory-intensive count = %d, want 13", len(MemoryIntensive()))
	}
}

func TestKernelConstruction(t *testing.T) {
	k, err := NewKernel(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if k.NumWarps() != 8 {
		t.Fatalf("warps = %d", k.NumWarps())
	}
	if k.TotalInstructions() != 8*4000 {
		t.Fatalf("total instructions = %d", k.TotalInstructions())
	}
	bad := testSpec()
	bad.Name = ""
	if _, err := NewKernel(bad); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// Property: every generated instruction is well-formed — addresses
// line-aligned and within the input for memory ops, conflict degree
// at least 1 for shared ops, zero values elsewhere.
func TestStreamWellFormedInvariant(t *testing.T) {
	f := func(seed uint64, warp uint8) bool {
		spec := testSpec()
		spec.Seed = seed
		spec.InstrPerWarp = 500
		spec.SharedPct = 10
		spec.ConflictDegree = 3
		s := NewWarpStream(spec, int(warp)%spec.NumWarps)
		for {
			ins, ok := s.Next()
			if !ok {
				return true
			}
			switch ins.Kind {
			case GlobalLoad, GlobalStore:
				if ins.NAddr == 0 || int(ins.NAddr) > MaxFanout {
					return false
				}
				for _, a := range ins.AddrSlice() {
					if a.Offset() != 0 || a < GlobalBase {
						return false
					}
				}
			case SharedOp:
				if ins.Conflict < 1 {
					return false
				}
			case Compute, BarrierOp:
				if ins.NAddr != 0 {
					return false
				}
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestClassString(t *testing.T) {
	if LWS.String() != "LWS" || SWS.String() != "SWS" || CI.String() != "CI" {
		t.Fatal("class strings wrong")
	}
	if GlobalLoad.String() != "load" || BarrierOp.String() != "barrier" {
		t.Fatal("kind strings wrong")
	}
}
