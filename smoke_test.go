package repro_test

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/workload"
)

// TestSmokeEndToEndCell runs one short benchmark × scheduler cell
// through the full stack so plain `go test ./...` exercises an
// end-to-end simulation in the root package (the benchmarks above only
// run under -bench).
func TestSmokeEndToEndCell(t *testing.T) {
	spec, err := workload.ByName("SYRK")
	if err != nil {
		t.Fatal(err)
	}
	f, err := harness.SchedulerByName("CIAO-C")
	if err != nil {
		t.Fatal(err)
	}
	opt := harness.Options{InstrPerWarp: 500}
	if testing.Short() {
		opt.InstrPerWarp = 200
	}
	r, g, err := harness.RunOne(spec, f, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions == 0 || r.Cycles == 0 {
		t.Fatalf("simulation made no progress: %+v", r)
	}
	if r.IPC <= 0 {
		t.Errorf("IPC = %g, want > 0", r.IPC)
	}
	if r.FinishedWarps == 0 && !r.TimedOut {
		t.Error("no warp finished and the run did not time out")
	}
	if r.L1.Accesses == 0 {
		t.Error("no L1D traffic — workload generator produced no memory ops")
	}
	if g.Interference() == nil {
		t.Error("no interference matrix recorded")
	}
}
